// Root benchmark harness: one benchmark per paper table/figure (the
// regeneration cost of each experiment) plus the ablation benches for
// the design choices DESIGN.md calls out. Figure-level results (SSF,
// variance) are attached to the bench output via ReportMetric, so
// `go test -bench=. -benchmem` doubles as the experiment record.
package repro

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/precharac"
	"repro/internal/sampling"
	"repro/internal/soc"
	"repro/internal/timingsim"
)

var (
	benchOnce sync.Once
	benchFW   *core.Framework
	benchEval *core.Evaluation
	benchErr  error
)

func benchSetup(b *testing.B) (*core.Framework, *core.Evaluation) {
	b.Helper()
	benchOnce.Do(func() {
		opts := core.DefaultOptions()
		benchFW, benchErr = core.Build(opts)
		if benchErr != nil {
			return
		}
		benchEval, benchErr = benchFW.NewEvaluation(core.BenchmarkIllegalWrite, core.DefaultAttackSpec())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchFW, benchEval
}

// --- Per-figure benchmarks ------------------------------------------------

// BenchmarkFig4Precharacterization measures the one-time system
// pre-characterization (cones + signatures + lifetime campaign) that
// Fig 4's distributions come from.
func BenchmarkFig4Precharacterization(b *testing.B) {
	cfg := soc.DefaultConfig()
	mpu, err := soc.BuildMPU(cfg.MPU)
	if err != nil {
		b.Fatal(err)
	}
	opts := precharac.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := soc.WithMPU(cfg, soc.SyntheticProgram(cfg.DMABase, cfg.DMALimit), mpu)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := precharac.Characterize(s, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7ErrorPatterns measures gate-attack runs with error
// pattern tracking (Fig 7's data source).
func BenchmarkFig7ErrorPatterns(b *testing.B) {
	_, ev := benchSetup(b)
	opts := montecarlo.CampaignOptions{Samples: b.N, Seed: 1, TrackPatterns: true}
	b.ResetTimer()
	c, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(c.Patterns)), "patterns")
}

// BenchmarkFig8SamplerConstruction measures building the importance
// distribution g_{T,P} from the pre-characterization.
func BenchmarkFig8SamplerConstruction(b *testing.B) {
	_, ev := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.ImportanceSampler(); err != nil {
			b.Fatal(err)
		}
	}
}

// The Fig 9 convergence comparison: one bench per strategy, with the
// SSF and sample variance attached as metrics.
func benchFig9(b *testing.B, mk func(*core.Evaluation) (sampling.Sampler, error)) {
	_, ev := benchSetup(b)
	sp, err := mk(ev)
	if err != nil {
		b.Fatal(err)
	}
	opts := montecarlo.CampaignOptions{Samples: b.N, Seed: 1}
	b.ResetTimer()
	c, err := ev.Engine.RunCampaign(context.Background(), sp, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(c.SSF()*1e6, "SSFe-6")
	b.ReportMetric(c.Variance()*1e6, "vare-6")
	b.ReportMetric(float64(c.Successes), "succ")
}

func BenchmarkFig9ConvergenceRandom(b *testing.B) {
	benchFig9(b, func(ev *core.Evaluation) (sampling.Sampler, error) { return ev.RandomSampler(), nil })
}

func BenchmarkFig9ConvergenceCone(b *testing.B) {
	benchFig9(b, (*core.Evaluation).ConeSampler)
}

func BenchmarkFig9ConvergenceImportance(b *testing.B) {
	benchFig9(b, (*core.Evaluation).ImportanceSampler)
}

// BenchmarkFig10GateAttackClasses measures the outcome-classification
// campaign behind Fig 10(a).
func BenchmarkFig10GateAttackClasses(b *testing.B) {
	_, ev := benchSetup(b)
	opts := montecarlo.CampaignOptions{Samples: b.N, Seed: 1}
	b.ResetTimer()
	c, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(100*float64(c.ClassCounts[montecarlo.Masked])/float64(b.N), "masked%")
	b.ReportMetric(100*float64(c.PathCounts[montecarlo.PathRTL])/float64(b.N), "rtl%")
}

// BenchmarkFig10RegisterAttacks measures the register-attack campaign
// behind Fig 10(b).
func BenchmarkFig10RegisterAttacks(b *testing.B) {
	_, ev := benchSetup(b)
	opts := montecarlo.CampaignOptions{Samples: b.N, Seed: 2, Mode: montecarlo.RegisterAttack}
	b.ResetTimer()
	c, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(c.SSF()*1e6, "SSFe-6")
}

// BenchmarkFig11TemporalPoint measures one point of the Fig 11(a)
// sweep: a full evaluation (golden run + campaign) at a 10-cycle
// temporal-accuracy window.
func BenchmarkFig11TemporalPoint(b *testing.B) {
	fw, _ := benchSetup(b)
	spec := core.DefaultAttackSpec()
	spec.TRange = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := fw.NewEvaluation(core.BenchmarkIllegalWrite, spec)
		if err != nil {
			b.Fatal(err)
		}
		sp, err := ev.ImportanceSampler()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ev.Engine.RunCampaign(context.Background(), sp, montecarlo.CampaignOptions{Samples: 500, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCriticalHardening measures the critical-register hardening
// evaluation loop (headline experiment).
func BenchmarkCriticalHardening(b *testing.B) {
	_, ev := benchSetup(b)
	opts := montecarlo.CampaignOptions{Samples: b.N, Seed: 3, Mode: montecarlo.RegisterAttack}
	b.ResetTimer()
	c, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		b.Fatal(err)
	}
	ranked := c.CriticalRegisters()
	b.ReportMetric(float64(len(ranked)), "contributors")
}

// --- Ablation benchmarks ---------------------------------------------------

// BenchmarkSignatureBitParallel vs BenchmarkSignatureScalar: the
// paper's "fast bit-parallel calculation" of switching signatures.
func benchSignature(b *testing.B, parallel bool) {
	cfg := soc.DefaultConfig()
	mpu, err := soc.BuildMPU(cfg.MPU)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := soc.WithMPU(cfg, soc.SyntheticProgram(cfg.DMABase, cfg.DMALimit), mpu)
		if err != nil {
			b.Fatal(err)
		}
		trace := logicsim.NewTrace(mpu.Netlist, 1024)
		for cyc := 0; cyc < 1024; cyc++ {
			cyc := cyc
			s.StepInject(func(func(id netlist.NodeID) bool) []netlist.NodeID {
				if parallel {
					trace.RecordSources(s.Sim, cyc)
				} else {
					trace.RecordAll(s.Sim, cyc)
				}
				return nil
			})
		}
		if parallel {
			trace.FillCombParallel(s.Sim)
		}
	}
}

func BenchmarkSignatureBitParallel(b *testing.B) { benchSignature(b, true) }
func BenchmarkSignatureScalar(b *testing.B)      { benchSignature(b, false) }

// BenchmarkCheckpointSpacing sweeps the golden-run checkpoint interval:
// denser checkpoints cost memory but shorten the restart warm-up.
func benchCheckpointSpacing(b *testing.B, interval int) {
	fw, _ := benchSetup(b)
	prog, err := fw.BenchmarkProgram(core.BenchmarkIllegalWrite)
	if err != nil {
		b.Fatal(err)
	}
	attack, err := fw.NewAttack(core.DefaultAttackSpec())
	if err != nil {
		b.Fatal(err)
	}
	s, err := soc.WithMPU(fw.Opts.SoC, prog, fw.MPU)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := montecarlo.New(s, attack, fw.Place, fw.Opts.Delay, fw.Char, nil)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.RunGolden(interval); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	samples := make([]fault.Sample, 256)
	for i := range samples {
		samples[i] = attack.SampleNominal(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunOnce(rng, samples[i%len(samples)], montecarlo.GateAttack)
	}
}

func BenchmarkCheckpointSpacing8(b *testing.B)   { benchCheckpointSpacing(b, 8) }
func BenchmarkCheckpointSpacing32(b *testing.B)  { benchCheckpointSpacing(b, 32) }
func BenchmarkCheckpointSpacing128(b *testing.B) { benchCheckpointSpacing(b, 128) }

// BenchmarkAnalyticalVsRTL compares deciding memory-type-only outcomes
// analytically against a full RTL resume (the design choice behind the
// memory/computation classification).
func BenchmarkAnalyticalVsRTL(b *testing.B) {
	fw, ev := benchSetup(b)
	prog, _ := fw.BenchmarkProgram(core.BenchmarkIllegalWrite)
	s2, err := soc.WithMPU(fw.Opts.SoC, prog, fw.MPU)
	if err != nil {
		b.Fatal(err)
	}
	rtlOnly, err := montecarlo.New(s2, ev.Attack, fw.Place, fw.Opts.Delay, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rtlOnly.RunGolden(fw.Opts.CheckpointInterval); err != nil {
		b.Fatal(err)
	}
	// Collect samples whose outcome is decided analytically.
	rng := rand.New(rand.NewSource(7))
	dummy := rand.New(rand.NewSource(0))
	var memSamples []fault.Sample
	for i := 0; i < 20000 && len(memSamples) < 64; i++ {
		smp := ev.Attack.SampleNominal(rng)
		if ev.Engine.RunOnce(dummy, smp, montecarlo.GateAttack).Path == montecarlo.PathAnalytical {
			memSamples = append(memSamples, smp)
		}
	}
	if len(memSamples) == 0 {
		b.Skip("no analytical samples found")
	}
	b.Run("analytical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev.Engine.RunOnce(dummy, memSamples[i%len(memSamples)], montecarlo.GateAttack)
		}
	})
	b.Run("rtl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rtlOnly.RunOnce(dummy, memSamples[i%len(memSamples)], montecarlo.GateAttack)
		}
	})
}

// BenchmarkAblationAlpha sweeps the importance distribution's α and
// reports the resulting estimator variance (design-choice ablation).
func benchAlpha(b *testing.B, alpha float64) {
	_, ev := benchSetup(b)
	sp, err := ev.ImportanceSamplerAB(alpha, sampling.DefaultBeta)
	if err != nil {
		b.Fatal(err)
	}
	opts := montecarlo.CampaignOptions{Samples: b.N, Seed: 1}
	b.ResetTimer()
	c, err := ev.Engine.RunCampaign(context.Background(), sp, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(c.Variance()*1e6, "vare-6")
}

func BenchmarkAblationAlpha0(b *testing.B)   { benchAlpha(b, 0) }
func BenchmarkAblationAlpha50(b *testing.B)  { benchAlpha(b, 50) }
func BenchmarkAblationAlpha500(b *testing.B) { benchAlpha(b, 500) }

// --- Campaign-throughput benchmarks -----------------------------------------

// benchCampaignThroughput measures end-to-end campaign throughput
// (ns/op is the per-sample cost; samples/s is attached as a metric) on
// the bundled MPU workload with the paper's importance sampler, for the
// scalar vs the lane-batched execution path.
func benchCampaignThroughput(b *testing.B, batch bool, lanes int) {
	_, ev := benchSetup(b)
	sp, err := ev.ImportanceSampler()
	if err != nil {
		b.Fatal(err)
	}
	opts := montecarlo.CampaignOptions{Samples: b.N, Seed: 1, Batch: batch, Lanes: lanes}
	b.ResetTimer()
	c, err := ev.Engine.RunCampaign(context.Background(), sp, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/s")
	b.ReportMetric(c.SSF()*1e6, "SSFe-6")
}

func BenchmarkCampaignScalar(b *testing.B)  { benchCampaignThroughput(b, false, 0) }
func BenchmarkCampaignBatched(b *testing.B) { benchCampaignThroughput(b, true, 0) }

// Per-width variants of the batched campaign: the resume width is a
// pure throughput knob (fixed-seed results are bit-identical), so these
// isolate how much of the batched win comes from the wide words.
func BenchmarkCampaignLanes64(b *testing.B)  { benchCampaignThroughput(b, true, 64) }
func BenchmarkCampaignLanes256(b *testing.B) { benchCampaignThroughput(b, true, 256) }
func BenchmarkCampaignLanes512(b *testing.B) { benchCampaignThroughput(b, true, 512) }

// --- Microbenchmarks of the substrates --------------------------------------

// BenchmarkRTLCycle measures one SoC co-simulation cycle.
func BenchmarkRTLCycle(b *testing.B) {
	cfg := soc.DefaultConfig()
	s, err := soc.New(cfg, soc.SyntheticProgram(cfg.DMABase, cfg.DMALimit))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkGateInjection measures one timed gate-level injection cycle.
func BenchmarkGateInjection(b *testing.B) {
	fw, ev := benchSetup(b)
	tsim, err := timingsim.New(fw.MPU.Netlist, fw.Opts.Delay)
	if err != nil {
		b.Fatal(err)
	}
	s := ev.Engine.SoC
	s.Reset()
	for i := 0; i < 100; i++ {
		s.Step()
	}
	s.Sim.Eval()
	values := func(id netlist.NodeID) bool { return s.Sim.Bool(id) }
	rng := rand.New(rand.NewSource(1))
	strikes := make([]timingsim.Strike, 64)
	for i := range strikes {
		smp := ev.Attack.SampleNominal(rng)
		strikes[i] = ev.Attack.Strike(fw.Place, smp)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tsim.Inject(values, strikes[i%len(strikes)])
	}
}

// BenchmarkRunOnce measures a complete cross-level fault-attack run
// (restore, warm-up, injection, classification, outcome).
func BenchmarkRunOnce(b *testing.B) {
	_, ev := benchSetup(b)
	rng := rand.New(rand.NewSource(1))
	samples := make([]fault.Sample, 512)
	for i := range samples {
		samples[i] = ev.Attack.SampleNominal(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Engine.RunOnce(rng, samples[i%len(samples)], montecarlo.GateAttack)
	}
}
