// Command precharac runs the system pre-characterization on the
// synthetic SoC and dumps the results: cone sizes, register
// classification, and the per-register lifetime/contamination numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/report"
)

func main() {
	maxDepth := flag.Int("depth", 50, "unroll depth of the cone extraction")
	traceCycles := flag.Int("trace", 1024, "synthetic benchmark trace length")
	lifetimeCap := flag.Int("cap", 200, "lifetime campaign horizon")
	verbose := flag.Bool("v", false, "dump per-register characterization")
	dump := flag.String("dump", "", "write the elaborated MPU netlist (gnl format) to this file")
	flag.Parse()

	opts := core.DefaultOptions()
	opts.Precharac.MaxDepth = *maxDepth
	opts.Precharac.TraceCycles = *traceCycles
	opts.Precharac.LifetimeCap = *lifetimeCap

	t0 := time.Now()
	fw, err := core.Build(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "precharac:", err)
		os.Exit(1)
	}
	char := fw.Char
	nl := fw.MPU.Netlist
	st, err := netlist.ComputeStats(nl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "precharac:", err)
		os.Exit(1)
	}

	t := report.NewTable(fmt.Sprintf("Pre-characterization of the SECP16 MPU (%v)", time.Since(t0).Round(time.Millisecond)),
		"metric", "value")
	t.Row("netlist nodes", st.Nodes)
	t.Row("combinational gates", st.CombGates)
	t.Row("registers", st.Registers)
	t.Row("logic depth", st.Depth)
	t.Row("area (gate equivalents)", st.Area)
	t.Row("responding signals", len(char.Responding))
	t.Row("fanin-cone registers", countRegs(nl, char.FaninRegsByDepth(nl)))
	t.Row("characterized registers", len(char.Regs))
	t.Row("memory-type", len(char.MemoryRegs()))
	t.Row("computation-type", len(char.ComputationRegs()))
	t.Row("responding-signal switch density", char.SwitchDensity())
	t.Render(os.Stdout)

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, "precharac:", err)
			os.Exit(1)
		}
		if err := netlist.Write(f, nl); err != nil {
			fmt.Fprintln(os.Stderr, "precharac:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "precharac:", err)
			os.Exit(1)
		}
		fmt.Printf("netlist written to %s\n", *dump)
	}

	if *verbose {
		regs := make([]netlist.NodeID, 0, len(char.Regs))
		for r := range char.Regs {
			regs = append(regs, r)
		}
		sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
		d := report.NewTable("Per-register characterization",
			"register", "lifetime", "contamination", "class")
		for _, r := range regs {
			rc := char.Regs[r]
			class := "computation"
			if rc.MemoryType {
				class = "memory"
			}
			d.Row(nl.Node(r).Name, rc.Lifetime, rc.Contamination, class)
		}
		d.Render(os.Stdout)
	}
}

func countRegs(nl *netlist.Netlist, layers [][]netlist.NodeID) int {
	seen := map[netlist.NodeID]bool{}
	for _, layer := range layers {
		for _, r := range layer {
			seen[r] = true
		}
	}
	return len(seen)
}
