// Command ssfeval evaluates the System Security Factor of a benchmark
// under a configurable attack, with a chosen sampling strategy.
//
// Campaigns can run across an engine pool (-parallel N), use the
// lane-batched speculative resume (-batch), and stop adaptively on the
// paper's weak-LLN convergence bound (-adaptive -eps E). Ctrl-C cancels
// a running campaign cleanly and reports the partial results
// accumulated so far. -cpuprofile / -memprofile write pprof profiles of
// the campaign for performance investigation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/montecarlo"
	"repro/internal/report"
	"repro/internal/sampling"
)

func main() {
	benchName := flag.String("bench", "write", "benchmark: write | read")
	strategy := flag.String("sampler", "importance", "sampler: random | cone | importance | stratified | sobol")
	samples := flag.Int("samples", 20000, "number of Monte Carlo samples (fixed-size campaigns)")
	seed := flag.Int64("seed", 1, "campaign seed")
	tRange := flag.Int("trange", 50, "temporal accuracy range (cycles)")
	blockFrac := flag.Float64("block", 0.125, "candidate sub-block fraction of MPU gates")
	mode := flag.String("mode", "gate", "attack mode: gate | register | glitch")
	glitchDepth := flag.Float64("glitch-depth", 300, "clock-glitch depth in ps (glitch mode)")
	alpha := flag.Float64("alpha", sampling.DefaultAlpha, "importance-sampling alpha")
	beta := flag.Float64("beta", sampling.DefaultBeta, "importance-sampling beta")
	parallel := flag.Int("parallel", 1, "number of worker engines (campaign shards)")
	adaptive := flag.Bool("adaptive", false, "stop on the weak-LLN convergence bound instead of a fixed sample count")
	adaptProp := flag.Bool("adapt-proposal", false, "adaptive: re-tune the proposal between rounds (importance/stratified samplers)")
	ctrlVar := flag.Bool("cv", false, "use the analytical control variate (random/importance/sobol samplers, gate/register modes)")
	eps := flag.Float64("eps", 0.005, "adaptive: absolute accuracy target epsilon")
	risk := flag.Float64("risk", 0.05, "adaptive: acceptable risk of an eps-deviation")
	maxSamples := flag.Int("max-samples", 1<<20, "adaptive: hard cap on total samples")
	progress := flag.Bool("progress", stderrIsTerminal(), "print a live progress line to stderr")
	batch := flag.Bool("batch", false, "use the lane-batched speculative resume (gate/register modes)")
	lanes := flag.Int("lanes", 0, "batched: virtual lanes per resume pass (64 | 256 | 512; 0 = default 512)")
	codegen := flag.Bool("codegen", true, "bind the generated straight-line evaluator when one matches the compiled plan hash (false = always interpret)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile after the campaign to this file")
	flag.Parse()

	bench := core.BenchmarkIllegalWrite
	if *benchName == "read" {
		bench = core.BenchmarkIllegalRead
	} else if *benchName != "write" {
		fatal(fmt.Errorf("unknown benchmark %q", *benchName))
	}

	// Ctrl-C / SIGTERM cancels the campaign; the partial results are
	// still reported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	t0 := time.Now()
	// Plans bind generated evaluators at compile time, so the switch
	// must cover the whole stack construction, not just the campaign.
	logicsim.SetGeneratedEnabled(*codegen)
	opts := core.DefaultOptions()
	if *tRange+1 > opts.Precharac.MaxDepth {
		opts.Precharac.MaxDepth = *tRange + 1
	}
	fw, err := core.Build(opts)
	if err != nil {
		fatal(err)
	}
	spec := core.DefaultAttackSpec()
	spec.TRange = *tRange
	spec.BlockFrac = *blockFrac
	ev, err := fw.NewEvaluation(bench, spec)
	if err != nil {
		fatal(err)
	}
	evalKind := "interpreted"
	if ev.Engine.SoC.Sim.Plan().Generated() {
		evalKind = "generated (straight-line)"
	}
	fmt.Printf("framework ready in %v; evaluator: %s; golden run: target cycle %d, final cycle %d\n",
		time.Since(t0).Round(time.Millisecond), evalKind, ev.Golden.TargetCycle, ev.Golden.FinalCycle)

	var sp sampling.Sampler
	switch *strategy {
	case "random":
		sp = ev.RandomSampler()
	case "cone":
		sp, err = ev.ConeSampler()
	case "importance":
		sp, err = ev.ImportanceSamplerAB(*alpha, *beta)
	case "stratified", "sobol":
		var im *sampling.Importance
		im, err = sampling.NewImportance(ev.Attack, fw.Char, fw.MPU.Netlist, fw.Place, *alpha, *beta)
		if err == nil {
			if *strategy == "stratified" {
				sp, err = sampling.NewStratified(im)
			} else {
				sp = sampling.NewSobol(im)
			}
		}
	default:
		err = fmt.Errorf("unknown sampler %q", *strategy)
	}
	if err != nil {
		fatal(err)
	}

	var prog montecarlo.ProgressFunc
	if *progress {
		prog = func(p montecarlo.Progress) {
			fmt.Fprintf(os.Stderr, "\r%9d samples  ssf=%.3e  paths m/a/p/r %d/%d/%d/%d  %.0f runs/s ",
				p.Done, p.SSF,
				p.PathCounts[0], p.PathCounts[1], p.PathCounts[2], p.PathCounts[3],
				p.RunsPerSec)
		}
	}

	copts := montecarlo.CampaignOptions{Samples: *samples, Seed: *seed, Progress: prog, Batch: *batch, Lanes: *lanes, ControlVariate: *ctrlVar}
	var camp *montecarlo.Campaign
	workers := 1
	if *cpuProfile != "" {
		f, perr := os.Create(*cpuProfile)
		if perr != nil {
			fatal(perr)
		}
		defer f.Close()
		if perr := pprof.StartCPUProfile(f); perr != nil {
			fatal(perr)
		}
		defer pprof.StopCPUProfile()
	}
	t1 := time.Now()
	switch *mode {
	case "gate", "register":
		if *mode == "register" {
			copts.Mode = montecarlo.RegisterAttack
		}
		pool, perr := ev.NewEnginePool(*parallel)
		if perr != nil {
			fatal(perr)
		}
		workers = pool.Size()
		if *adaptive {
			aopts := montecarlo.DefaultAdaptive(*eps)
			aopts.Risk = *risk
			aopts.Mode = copts.Mode
			aopts.Seed = *seed
			aopts.MaxSamples = *maxSamples
			aopts.Progress = prog
			aopts.Batch = *batch
			aopts.Lanes = *lanes
			aopts.AdaptProposal = *adaptProp
			aopts.ControlVariate = *ctrlVar
			camp, err = pool.RunAdaptive(ctx, sp, aopts)
		} else if pool.Size() > 1 {
			camp, err = pool.Run(ctx, sp, copts)
		} else {
			camp, err = ev.Engine.RunCampaign(ctx, sp, copts)
		}
	case "glitch":
		if *parallel > 1 || *adaptive || *batch || *ctrlVar {
			fatal(fmt.Errorf("glitch campaigns run sequentially, scalar, with a fixed sample count and no control variate"))
		}
		tech := fault.DefaultClockGlitch()
		tech.Depth = *glitchDepth
		tech.ClockPeriod = fw.Opts.Delay.ClockPeriod
		var gattack *fault.GlitchAttack
		gattack, err = fault.NewGlitchAttack("glitch", *tRange, tech)
		if err != nil {
			fatal(err)
		}
		camp, err = ev.Engine.RunGlitchCampaign(ctx, gattack, copts)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	elapsed := time.Since(t1)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	cancelled := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	if err != nil && !(cancelled && camp != nil) {
		fatal(err)
	}
	if cancelled {
		fmt.Fprintf(os.Stderr, "ssfeval: cancelled after %d samples; reporting partial results\n", camp.Est.N())
	}

	runs := camp.Est.N()
	title := fmt.Sprintf("SSF evaluation: %s benchmark, %s sampler, %s attacks", bench, camp.SamplerName, *mode)
	if *adaptive {
		title += fmt.Sprintf(" (adaptive eps=%g risk=%g)", *eps, *risk)
	}
	t := report.NewTable(title, "metric", "value")
	t.Row("SSF", camp.SSF())
	t.Row("std. error", camp.Est.StdErr())
	t.Row("95% CI half-width", camp.CIHalfWidth())
	t.Row("sample variance", camp.Variance())
	t.Row("samples", runs)
	if ess := camp.ESS(); ess > 0 {
		t.Row("effective sample size", fmt.Sprintf("%.0f", ess))
	}
	t.Row("worker engines", workers)
	t.Row("successful attacks", camp.Successes)
	t.Row("masked / mem-only / both", fmt.Sprintf("%d / %d / %d",
		camp.ClassCounts[0], camp.ClassCounts[1], camp.ClassCounts[2]))
	t.Row("eval paths (masked/analytical/pruned/rtl)", fmt.Sprintf("%d / %d / %d / %d",
		camp.PathCounts[0], camp.PathCounts[1], camp.PathCounts[2], camp.PathCounts[3]))
	t.Row("RTL cycles simulated", camp.RTLCycles)
	t.Row("throughput", fmt.Sprintf("%.0f runs/s", float64(runs)/elapsed.Seconds()))
	if camp.Strata != nil {
		hits := ""
		for k := 0; k < camp.Strata.K(); k++ {
			if h := camp.Strata.Hits(k); h > 0 {
				if hits != "" {
					hits += "  "
				}
				hits += fmt.Sprintf("t=%d:%d", k, h)
			}
		}
		if hits == "" {
			hits = "(none)"
		}
		t.Row("per-stratum hits", hits)
	}
	t.Render(os.Stdout)

	if *memProfile != "" {
		f, perr := os.Create(*memProfile)
		if perr != nil {
			fatal(perr)
		}
		runtime.GC() // materialize up-to-date heap statistics
		if perr := pprof.WriteHeapProfile(f); perr != nil {
			fatal(perr)
		}
		f.Close()
	}
}

// stderrIsTerminal reports whether stderr is an interactive terminal
// (the default for the live progress line).
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssfeval:", err)
	os.Exit(1)
}
