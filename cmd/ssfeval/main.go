// Command ssfeval evaluates the System Security Factor of a benchmark
// under a configurable attack, with a chosen sampling strategy.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/montecarlo"
	"repro/internal/report"
	"repro/internal/sampling"
)

func main() {
	benchName := flag.String("bench", "write", "benchmark: write | read")
	strategy := flag.String("sampler", "importance", "sampler: random | cone | importance")
	samples := flag.Int("samples", 20000, "number of Monte Carlo samples")
	seed := flag.Int64("seed", 1, "campaign seed")
	tRange := flag.Int("trange", 50, "temporal accuracy range (cycles)")
	blockFrac := flag.Float64("block", 0.125, "candidate sub-block fraction of MPU gates")
	mode := flag.String("mode", "gate", "attack mode: gate | register | glitch")
	glitchDepth := flag.Float64("glitch-depth", 300, "clock-glitch depth in ps (glitch mode)")
	alpha := flag.Float64("alpha", sampling.DefaultAlpha, "importance-sampling alpha")
	beta := flag.Float64("beta", sampling.DefaultBeta, "importance-sampling beta")
	flag.Parse()

	bench := core.BenchmarkIllegalWrite
	if *benchName == "read" {
		bench = core.BenchmarkIllegalRead
	} else if *benchName != "write" {
		fatal(fmt.Errorf("unknown benchmark %q", *benchName))
	}

	t0 := time.Now()
	opts := core.DefaultOptions()
	if *tRange+1 > opts.Precharac.MaxDepth {
		opts.Precharac.MaxDepth = *tRange + 1
	}
	fw, err := core.Build(opts)
	if err != nil {
		fatal(err)
	}
	spec := core.DefaultAttackSpec()
	spec.TRange = *tRange
	spec.BlockFrac = *blockFrac
	ev, err := fw.NewEvaluation(bench, spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("framework ready in %v; golden run: target cycle %d, final cycle %d\n",
		time.Since(t0).Round(time.Millisecond), ev.Golden.TargetCycle, ev.Golden.FinalCycle)

	var sp sampling.Sampler
	switch *strategy {
	case "random":
		sp = ev.RandomSampler()
	case "cone":
		sp, err = ev.ConeSampler()
	case "importance":
		sp, err = ev.ImportanceSamplerAB(*alpha, *beta)
	default:
		err = fmt.Errorf("unknown sampler %q", *strategy)
	}
	if err != nil {
		fatal(err)
	}

	copts := montecarlo.CampaignOptions{Samples: *samples, Seed: *seed}
	var camp *montecarlo.Campaign
	t1 := time.Now()
	switch *mode {
	case "gate", "register":
		if *mode == "register" {
			copts.Mode = montecarlo.RegisterAttack
		}
		camp, err = ev.Engine.RunCampaign(sp, copts)
	case "glitch":
		tech := fault.DefaultClockGlitch()
		tech.Depth = *glitchDepth
		tech.ClockPeriod = fw.Opts.Delay.ClockPeriod
		var gattack *fault.GlitchAttack
		gattack, err = fault.NewGlitchAttack("glitch", *tRange, tech)
		if err != nil {
			fatal(err)
		}
		camp, err = ev.Engine.RunGlitchCampaign(gattack, copts)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(t1)

	t := report.NewTable(fmt.Sprintf("SSF evaluation: %s benchmark, %s sampler, %s attacks", bench, camp.SamplerName, *mode),
		"metric", "value")
	t.Row("SSF", camp.SSF())
	t.Row("std. error", camp.Est.StdErr())
	t.Row("sample variance", camp.Variance())
	t.Row("successful attacks", camp.Successes)
	t.Row("masked / mem-only / both", fmt.Sprintf("%d / %d / %d",
		camp.ClassCounts[0], camp.ClassCounts[1], camp.ClassCounts[2]))
	t.Row("eval paths (masked/analytical/pruned/rtl)", fmt.Sprintf("%d / %d / %d / %d",
		camp.PathCounts[0], camp.PathCounts[1], camp.PathCounts[2], camp.PathCounts[3]))
	t.Row("RTL cycles simulated", camp.RTLCycles)
	t.Row("throughput", fmt.Sprintf("%.0f runs/s", float64(*samples)/elapsed.Seconds()))
	t.Render(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssfeval:", err)
	os.Exit(1)
}
