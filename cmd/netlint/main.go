// Command netlint is the static verification front-end: it runs the
// internal/modelcheck linter over gate-level netlists (.gnl files) or
// over the built-in MPU model, and reports every finding with its
// stable check ID, severity, and location.
//
// Files are parsed with netlist.ReadUnchecked, so structurally broken
// circuits — the ones worth linting — are loaded and diagnosed instead
// of being rejected at the parser.
//
// With -plan, each lintable design is additionally compiled to its
// logicsim evaluation plan (with the construction-time guard off, so a
// rejected plan is diagnosed here instead of erroring) and the PL-family
// plan-IR findings are appended to the target's report. The plan check
// runs only when the netlist itself has no Error-severity finding — a
// structurally broken netlist cannot compile.
//
// Usage:
//
//	netlint [-json] [-plan] [-fail-on=info|warn|error] file.gnl ...
//	netlint -builtin            # lint the built-in MPU model
//	netlint -plan -builtin      # also verify the MPU's compiled plan
//
// Findings are reported in deterministic order (node, then check ID).
// Exit status: 0 when no finding reaches the -fail-on severity, 1 when
// one does, 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/logicsim"
	"repro/internal/modelcheck"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/soc"
)

// target is one lint subject and its report, for -json output.
type target struct {
	Name   string             `json:"name"`
	Report *modelcheck.Report `json:"report"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	failOnName := flag.String("fail-on", "error", "lowest severity that causes exit status 1: info | warn | error")
	builtin := flag.Bool("builtin", false, "lint the built-in MPU model (placement + responding signals) instead of files")
	plan := flag.Bool("plan", false, "also compile each design's evaluation plan and run the PL-family plan-IR verifier")
	maxDepth := flag.Int("max-depth", 50, "unroll window for the responding-cone check (-builtin only)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: netlint [flags] file.gnl ...\n       netlint -builtin\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	failOn, err := modelcheck.ParseSeverity(*failOnName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netlint:", err)
		os.Exit(2)
	}
	if *builtin == (flag.NArg() > 0) {
		flag.Usage()
		os.Exit(2)
	}

	var targets []target
	if *builtin {
		t, err := lintBuiltin(*maxDepth, *plan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netlint:", err)
			os.Exit(2)
		}
		targets = append(targets, t)
	} else {
		for _, path := range flag.Args() {
			t, err := lintFile(path, *plan)
			if err != nil {
				fmt.Fprintln(os.Stderr, "netlint:", err)
				os.Exit(2)
			}
			targets = append(targets, t)
		}
	}
	for _, t := range targets {
		t.Report.Sort()
	}

	failed := false
	for _, t := range targets {
		if t.Report.HasAtLeast(failOn) {
			failed = true
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(targets); err != nil {
			fmt.Fprintln(os.Stderr, "netlint:", err)
			os.Exit(2)
		}
	} else {
		for _, t := range targets {
			for _, f := range t.Report.Findings {
				fmt.Printf("%s: %s\n", t.Name, f)
			}
		}
		if !failed {
			fmt.Printf("netlint: %d target(s) clean at fail-on=%s\n", len(targets), failOn)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// lintFile parses one .gnl file without validation and runs the
// netlist-structural checks over it, plus the plan-IR verifier when
// plan is set.
func lintFile(path string, plan bool) (target, error) {
	fh, err := os.Open(path)
	if err != nil {
		return target{}, err
	}
	defer fh.Close()
	n, err := netlist.ReadUnchecked(fh)
	if err != nil {
		return target{}, fmt.Errorf("%s: %w", path, err)
	}
	report := modelcheck.CheckNetlist(n)
	if plan {
		if err := lintPlan(n, report); err != nil {
			return target{}, fmt.Errorf("%s: %w", path, err)
		}
	}
	return target{Name: path, Report: report}, nil
}

// lintBuiltin elaborates the built-in MPU, places it, and runs the full
// model-level check set over it, plus the plan-IR verifier when plan is
// set.
func lintBuiltin(maxDepth int, plan bool) (target, error) {
	mpu, err := soc.BuildMPU(soc.DefaultMPUConfig())
	if err != nil {
		return target{}, fmt.Errorf("building MPU: %w", err)
	}
	report := modelcheck.CheckModel(modelcheck.Model{
		Netlist:    mpu.Netlist,
		Place:      placement.Place(mpu.Netlist),
		Responding: mpu.RespondingSignals,
		MaxDepth:   maxDepth,
	})
	if plan {
		if err := lintPlan(mpu.Netlist, report); err != nil {
			return target{}, err
		}
	}
	return target{Name: "builtin:mpu", Report: report}, nil
}

// lintPlan compiles the netlist's evaluation plan with the
// construction-time guard disabled — the verifier below is the point —
// and appends the PL-family findings to the report. Skipped when the
// netlist already carries Error findings (it cannot compile); compile
// failures beyond that (packed-op field limits) are hard errors.
func lintPlan(n *netlist.Netlist, report *modelcheck.Report) error {
	if report.HasAtLeast(modelcheck.Error) {
		return nil
	}
	p, err := logicsim.CompileWithOptions(n, logicsim.CompileOptions{SkipPlanCheck: true})
	if err != nil {
		return fmt.Errorf("compiling plan: %w", err)
	}
	report.Findings = append(report.Findings, modelcheck.CheckPlan(n, p.View()).Findings...)
	return nil
}
