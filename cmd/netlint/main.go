// Command netlint is the static verification front-end: it runs the
// internal/modelcheck linter over gate-level netlists (.gnl files) or
// over the built-in MPU model, and reports every finding with its
// stable check ID, severity, and location.
//
// Files are parsed with netlist.ReadUnchecked, so structurally broken
// circuits — the ones worth linting — are loaded and diagnosed instead
// of being rejected at the parser.
//
// Usage:
//
//	netlint [-json] [-fail-on=info|warn|error] file.gnl ...
//	netlint -builtin            # lint the built-in MPU model
//
// Exit status: 0 when no finding reaches the -fail-on severity, 1 when
// one does, 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/modelcheck"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/soc"
)

// target is one lint subject and its report, for -json output.
type target struct {
	Name   string             `json:"name"`
	Report *modelcheck.Report `json:"report"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	failOnName := flag.String("fail-on", "error", "lowest severity that causes exit status 1: info | warn | error")
	builtin := flag.Bool("builtin", false, "lint the built-in MPU model (placement + responding signals) instead of files")
	maxDepth := flag.Int("max-depth", 50, "unroll window for the responding-cone check (-builtin only)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: netlint [flags] file.gnl ...\n       netlint -builtin\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	failOn, err := modelcheck.ParseSeverity(*failOnName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netlint:", err)
		os.Exit(2)
	}
	if *builtin == (flag.NArg() > 0) {
		flag.Usage()
		os.Exit(2)
	}

	var targets []target
	if *builtin {
		t, err := lintBuiltin(*maxDepth)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netlint:", err)
			os.Exit(2)
		}
		targets = append(targets, t)
	} else {
		for _, path := range flag.Args() {
			t, err := lintFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "netlint:", err)
				os.Exit(2)
			}
			targets = append(targets, t)
		}
	}

	failed := false
	for _, t := range targets {
		if t.Report.HasAtLeast(failOn) {
			failed = true
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(targets); err != nil {
			fmt.Fprintln(os.Stderr, "netlint:", err)
			os.Exit(2)
		}
	} else {
		for _, t := range targets {
			for _, f := range t.Report.Findings {
				fmt.Printf("%s: %s\n", t.Name, f)
			}
		}
		if !failed {
			fmt.Printf("netlint: %d target(s) clean at fail-on=%s\n", len(targets), failOn)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// lintFile parses one .gnl file without validation and runs the
// netlist-structural checks over it.
func lintFile(path string) (target, error) {
	fh, err := os.Open(path)
	if err != nil {
		return target{}, err
	}
	defer fh.Close()
	n, err := netlist.ReadUnchecked(fh)
	if err != nil {
		return target{}, fmt.Errorf("%s: %w", path, err)
	}
	return target{Name: path, Report: modelcheck.CheckNetlist(n)}, nil
}

// lintBuiltin elaborates the built-in MPU, places it, and runs the full
// model-level check set over it.
func lintBuiltin(maxDepth int) (target, error) {
	mpu, err := soc.BuildMPU(soc.DefaultMPUConfig())
	if err != nil {
		return target{}, fmt.Errorf("building MPU: %w", err)
	}
	report := modelcheck.CheckModel(modelcheck.Model{
		Netlist:    mpu.Netlist,
		Place:      placement.Place(mpu.Netlist),
		Responding: mpu.RespondingSignals,
		MaxDepth:   maxDepth,
	})
	return target{Name: "builtin:mpu", Report: report}, nil
}
