// Command ssfserver runs the campaign engine as a long-running
// HTTP/JSON evaluation service: submit campaign jobs (fixed-size or
// adaptive), stream their progress over SSE, fetch results, and rank
// hardening variants on a ranked SSF leaderboard. Jobs are partitioned
// deterministically across a pool of worker engines, checkpointed to an
// on-disk store every round, and resumed bit-identically after a
// restart. See the README's "Evaluation server" section for the API
// and a curl quick-start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", defaultWorkers(), "engine pool size (campaign shards per job)")
	storeDir := flag.String("store", "ssfserver-data", "job store directory (checkpoints and results)")
	benchName := flag.String("bench", "write", "benchmark: write | read")
	tRange := flag.Int("trange", 50, "temporal accuracy range (cycles)")
	blockFrac := flag.Float64("block", 0.125, "candidate sub-block fraction of MPU gates")
	queueDepth := flag.Int("queue", 64, "bounded job queue depth (backpressure beyond it)")
	rate := flag.Float64("rate", 5, "per-tenant submissions per second (0 disables rate limiting)")
	burst := flag.Float64("burst", 10, "per-tenant burst size")
	checkpointEvery := flag.Int64("checkpoint-every", 1, "checkpoint cadence in campaign rounds")
	maxSamples := flag.Int("max-samples", 1<<22, "per-job sample budget cap")
	flag.Parse()

	bench := core.BenchmarkIllegalWrite
	if *benchName == "read" {
		bench = core.BenchmarkIllegalRead
	} else if *benchName != "write" {
		fatal(fmt.Errorf("unknown benchmark %q", *benchName))
	}

	t0 := time.Now()
	opts := core.DefaultOptions()
	if *tRange+1 > opts.Precharac.MaxDepth {
		opts.Precharac.MaxDepth = *tRange + 1
	}
	fw, err := core.Build(opts)
	if err != nil {
		fatal(err)
	}
	spec := core.DefaultAttackSpec()
	spec.TRange = *tRange
	spec.BlockFrac = *blockFrac
	ev, err := fw.NewEvaluation(bench, spec)
	if err != nil {
		fatal(err)
	}
	pool, err := ev.NewEnginePool(*workers)
	if err != nil {
		fatal(err)
	}
	log.Printf("ssfserver: framework ready in %v (%d worker engines, %s benchmark)",
		time.Since(t0).Round(time.Millisecond), pool.Size(), bench)

	srv, err := server.New(pool, *storeDir, server.Config{
		QueueDepth:      *queueDepth,
		CheckpointEvery: *checkpointEvery,
		RatePerSec:      *rate,
		Burst:           *burst,
		MaxSamples:      *maxSamples,
	})
	if err != nil {
		fatal(err)
	}
	srv.Start()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("ssfserver: shutting down (running job checkpoints and re-queues)")
		srv.Shutdown()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
	}()
	log.Printf("ssfserver: listening on %s (store %s)", *addr, *storeDir)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

// defaultWorkers sizes the pool to the host without over-cloning: each
// engine pays one golden run at startup.
func defaultWorkers() int {
	n := runtime.NumCPU()
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssfserver:", err)
	os.Exit(1)
}
