// Command gnlgen generates a per-netlist straight-line Go evaluator:
// it compiles a design to its logicsim evaluation plan and emits a
// source file with branch-free Eval1/Eval4/Eval8 functions (64, 256,
// and 512 lanes) that self-register in logicsim's plan-hash registry,
// so Compile transparently swaps the generated code in for that exact
// design.
//
// Usage:
//
//	gnlgen -o out.go -pkg mypkg -prefix myDesign file.gnl
//	gnlgen -builtin -o internal/soc/mpu_evalgen.go -pkg soc -prefix mpuGen
//
// With -builtin the source design is the bundled MPU
// (soc.BuildMPU(soc.DefaultMPUConfig())); this is how the committed
// internal/soc/mpu_evalgen.go is produced (see the go:generate
// directive in internal/soc/mpu.go, or run `make gen`). Output is
// deterministic for a given design — no timestamps — so the CI drift
// job can diff a regeneration byte for byte.
//
// With -o the file is written atomically only when its content
// changes; without -o the source goes to stdout. Exit status: 0 on
// success, 2 on usage or generation errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/logicsim/codegen"
	"repro/internal/netlist"
	"repro/internal/soc"
)

func main() {
	out := flag.String("o", "", "output file (default: stdout); written only when content changes")
	pkg := flag.String("pkg", "main", "package name of the generated file")
	prefix := flag.String("prefix", "gen", "function-name prefix (<prefix>Eval1/4/8)")
	builtin := flag.Bool("builtin", false, "generate for the bundled MPU instead of a .gnl file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gnlgen [-o out.go] [-pkg name] [-prefix name] file.gnl\n       gnlgen -builtin [-o out.go] [-pkg name] [-prefix name]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var (
		nl     *netlist.Netlist
		source string
	)
	switch {
	case *builtin:
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
		cfg := soc.DefaultMPUConfig()
		mpu, err := soc.BuildMPU(cfg)
		if err != nil {
			fatalf("build builtin MPU: %v", err)
		}
		nl = mpu.Netlist
		source = fmt.Sprintf("built-in MPU (soc.BuildMPU, regions=%d, addrBits=%d)", cfg.Regions, cfg.AddrBits)
	case flag.NArg() == 1:
		path := flag.Arg(0)
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		nl, err = netlist.Read(f)
		f.Close()
		if err != nil {
			fatalf("%s: %v", path, err)
		}
		// Provenance uses the bare file name, not the invocation path,
		// so output bytes do not depend on the working directory.
		source = filepath.Base(path)
	default:
		flag.Usage()
		os.Exit(2)
	}

	src, err := codegen.Generate(nl, codegen.Config{
		Package: *pkg,
		Prefix:  *prefix,
		Source:  source,
	})
	if err != nil {
		fatalf("%v", err)
	}

	if *out == "" {
		os.Stdout.Write(src)
		return
	}
	if old, err := os.ReadFile(*out); err == nil && string(old) == string(src) {
		return // up to date; keep mtime stable for build caching
	}
	if err := writeAtomic(*out, src); err != nil {
		fatalf("%v", err)
	}
}

// writeAtomic lands the file via a same-directory rename so a killed
// run never leaves a half-written generated file in the tree.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name()) //errdrop-ok (best-effort cleanup on the error path; the original error is returned)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name()) //errdrop-ok (best-effort cleanup on the error path; the original error is returned)
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name()) //errdrop-ok (best-effort cleanup on the error path; the original error is returned)
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name()) //errdrop-ok (best-effort cleanup on the error path; the original error is returned)
		return err
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gnlgen: "+format+"\n", args...)
	os.Exit(2)
}
