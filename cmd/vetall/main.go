// Command vetall runs the project's custom determinism analyzers
// (tools/analyzers) over the module source tree:
//
//   - norandglobal — everywhere: the shared global math/rand source is
//     banned outside tests.
//   - noallochot — everywhere: allocations inside //hot loops.
//   - nowallclock — only in the simulation packages, where host-clock
//     reads would make behaviour machine-dependent.
//
// It prints one line per finding and exits 1 when there are any, so
// `make lint` and CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/tools/analyzers"
)

// simulationDirs lists the package directories (relative to the module
// root, slash-separated) whose behaviour must not depend on the host
// clock.
var simulationDirs = map[string]bool{
	"internal/analytical":  true,
	"internal/core":        true,
	"internal/experiments": true,
	"internal/fault":       true,
	"internal/harden":      true,
	"internal/logicsim":    true,
	"internal/montecarlo":  true,
	"internal/netlist":     true,
	"internal/precharac":   true,
	"internal/sampling":    true,
	"internal/soc":         true,
	"internal/timingsim":   true,
}

func main() {
	root := flag.String("root", "", "module root to scan (default: walk up from cwd to go.mod)")
	flag.Parse()
	if *root == "" {
		r, err := findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "vetall:", err)
			os.Exit(2)
		}
		*root = r
	}

	dirs, err := goPackageDirs(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetall:", err)
		os.Exit(2)
	}

	failed := false
	for _, dir := range dirs {
		rel, err := filepath.Rel(*root, dir)
		if err != nil {
			rel = dir
		}
		rel = filepath.ToSlash(rel)
		set := []*analyzers.Analyzer{analyzers.NoRandGlobal, analyzers.NoAllocHot}
		if simulationDirs[rel] {
			set = append(set, analyzers.NoWallClock)
		}
		fset := token.NewFileSet()
		files, err := analyzers.ParseDir(fset, dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vetall:", err)
			os.Exit(2)
		}
		for _, d := range analyzers.Run(fset, files, set) {
			fmt.Println(d)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("vetall: no findings")
}

// findModuleRoot walks up from the working directory to the directory
// holding go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// goPackageDirs returns every directory under root that directly
// contains .go files, skipping VCS metadata and testdata trees.
func goPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && path != root || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}
