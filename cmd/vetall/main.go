// Command vetall runs the project's custom determinism and concurrency
// analyzers (tools/analyzers) over the module source tree — internal/,
// cmd/, tools/, and examples/ alike:
//
//   - norandglobal — everywhere: the shared global math/rand source is
//     banned outside tests.
//   - noallochot — everywhere: allocations inside //hot loops.
//   - mapiterdet — everywhere: map iteration order flowing into
//     results or reports.
//   - lockguard — everywhere: //guarded-by:mu annotated struct fields
//     accessed without their mutex.
//   - seedflow — everywhere: rand sources seeded from the wall clock,
//     the pid, or crypto/rand.
//   - errdrop — everywhere: statement calls discarding an error result.
//   - nowallclock — only in the simulation packages, where host-clock
//     reads would make behaviour machine-dependent.
//
// Findings are printed in deterministic order (file, position, analyzer
// name) — one line each, or a JSON array with -json so CI can archive
// the findings as an artifact. Exit status 1 when there are findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/tools/analyzers"
)

// simulationDirs lists the package directories (relative to the module
// root, slash-separated) whose behaviour must not depend on the host
// clock.
var simulationDirs = map[string]bool{
	"internal/analytical":  true,
	"internal/core":        true,
	"internal/experiments": true,
	"internal/fault":       true,
	"internal/harden":      true,
	"internal/logicsim":    true,
	"internal/montecarlo":  true,
	"internal/netlist":     true,
	"internal/precharac":   true,
	"internal/sampling":    true,
	"internal/soc":         true,
	"internal/timingsim":   true,
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Msg      string `json:"msg"`
}

func main() {
	root := flag.String("root", "", "module root to scan (default: walk up from cwd to go.mod)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (always, even when empty)")
	flag.Parse()
	if *root == "" {
		r, err := findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "vetall:", err)
			os.Exit(2)
		}
		*root = r
	}

	dirs, err := goPackageDirs(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetall:", err)
		os.Exit(2)
	}

	var diags []analyzers.Diagnostic
	for _, dir := range dirs {
		rel, err := filepath.Rel(*root, dir)
		if err != nil {
			rel = dir
		}
		rel = filepath.ToSlash(rel)
		set := []*analyzers.Analyzer{
			analyzers.NoRandGlobal,
			analyzers.NoAllocHot,
			analyzers.MapIterDet,
			analyzers.LockGuard,
			analyzers.SeedFlow,
			analyzers.ErrDrop,
		}
		if simulationDirs[rel] {
			set = append(set, analyzers.NoWallClock)
		}
		fset := token.NewFileSet()
		files, err := analyzers.ParseDir(fset, dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vetall:", err)
			os.Exit(2)
		}
		diags = append(diags, analyzers.Run(fset, files, set)...)
	}
	// Global deterministic order across package directories: file,
	// position, analyzer name, message. Run already sorts within one
	// directory by position; the cross-directory walk order and the
	// analyzer tiebreak are pinned here so repeated runs and CI
	// artifacts diff cleanly.
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Msg < b.Msg
	})

	if *jsonOut {
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Msg:      d.Msg,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "vetall:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) == 0 {
			fmt.Println("vetall: no findings")
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the directory
// holding go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// goPackageDirs returns every directory under root that directly
// contains .go files, skipping VCS metadata and testdata trees.
func goPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && path != root || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}
