// Command benchjson regenerates BENCH_runonce.json, the committed
// performance record of the per-run hot path: ns/op, B/op, and
// allocs/op for a complete cross-level run (RunOnce), one timed
// gate-level injection (GateInjection), and one RTL cycle (RTLCycle).
// It uses the same setup as the root go-bench harness, so the numbers
// are comparable to `go test -bench`.
//
// Usage: go run ./cmd/benchjson [-out BENCH_runonce.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/soc"
	"repro/internal/timingsim"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	N           int     `json:"n"`
}

func main() {
	out := flag.String("out", "BENCH_runonce.json", "output path")
	flag.Parse()

	fw, err := core.Build(core.DefaultOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	ev, err := fw.NewEvaluation(core.BenchmarkIllegalWrite, core.DefaultAttackSpec())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	var results []benchResult
	record := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		res := benchResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			N:           r.N,
		}
		results = append(results, res)
		fmt.Printf("%-16s %12.0f ns/op %8d B/op %6d allocs/op (n=%d)\n",
			name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.N)
	}

	record("RunOnce", func(b *testing.B) {
		b.ReportAllocs()
		rng := rand.New(rand.NewSource(1))
		samples := make([]fault.Sample, 512)
		for i := range samples {
			samples[i] = ev.Attack.SampleNominal(rng)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev.Engine.RunOnce(rng, samples[i%len(samples)], montecarlo.GateAttack)
		}
	})

	record("GateInjection", func(b *testing.B) {
		b.ReportAllocs()
		tsim, err := timingsim.New(fw.MPU.Netlist, fw.Opts.Delay)
		if err != nil {
			b.Fatal(err)
		}
		s := ev.Engine.SoC
		s.Reset()
		for i := 0; i < 100; i++ {
			s.Step()
		}
		s.Sim.Eval()
		values := func(id netlist.NodeID) bool { return s.Sim.Bool(id) }
		rng := rand.New(rand.NewSource(1))
		strikes := make([]timingsim.Strike, 64)
		for i := range strikes {
			smp := ev.Attack.SampleNominal(rng)
			strikes[i] = ev.Attack.Strike(fw.Place, smp)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tsim.Inject(values, strikes[i%len(strikes)])
		}
	})

	record("RTLCycle", func(b *testing.B) {
		b.ReportAllocs()
		cfg := soc.DefaultConfig()
		s, err := soc.New(cfg, soc.SyntheticProgram(cfg.DMABase, cfg.DMALimit))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
	})

	data, err := json.MarshalIndent(map[string]any{"benchmarks": results}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
