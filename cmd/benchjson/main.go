// Command benchjson maintains the committed performance records:
//
//   - BENCH_runonce.json (-suite runonce, default): ns/op, B/op, and
//     allocs/op for a complete cross-level run (RunOnce), one timed
//     gate-level injection (GateInjection), and one RTL cycle
//     (RTLCycle).
//   - BENCH_campaign.json (-suite campaign): campaign throughput
//     (ns/op and samples/sec) of the scalar and lane-batched execution
//     paths, plus the batched-over-scalar speedup.
//   - BENCH_lanes.json (-suite lanes): batched campaign throughput
//     across resume widths — scalar baseline, then 64, 256, and 512
//     virtual lanes per pass. Fixed-seed results are bit-identical at
//     every width; only the throughput differs.
//   - BENCH_codegen.json (-suite codegen): the generated straight-line
//     evaluator (internal/logicsim/codegen) against the interpreted op
//     stream on the bundled MPU, at two levels. EvalPass* rows time one
//     combinational pass per lane width (samples_per_sec counts
//     lane-samples — lanes per pass over pass time); Campaign* rows time
//     the full lane-batched campaign on both stacks. The headline
//     speedup_codegen_vs_interp is the 512-lane evaluator ratio;
//     speedup_codegen_campaign is the end-to-end campaign ratio, which
//     Amdahl dilutes because the per-sample cost is dominated by the
//     gate-level timing injection, not the combinational sweep. Fixed-
//     seed results are bit-identical on both paths at every width.
//   - BENCH_convergence.json (-suite convergence): statistical
//     efficiency instead of wall time — for each sampler, the number of
//     samples an adaptive campaign needs before its 95% CI half-width
//     drops to the target (ns_per_op holds the sample count, so the
//     -compare regression gate applies unchanged). The runs are
//     deterministic (fixed seed), so the suite is gated at a tight
//     tolerance.
//
// It uses the same setup as the root go-bench harness, so the numbers
// are comparable to `go test -bench`.
//
// Regression gate: `benchjson -compare -tolerance 0.25 old.json
// new.json` compares two records, prints the per-metric percentage
// deltas, and exits non-zero when any benchmark present in old got more
// than (1+tolerance)× slower in new, or is missing from new — the CI
// bench-smoke step runs it against the committed record.
//
// Usage:
//
//	go run ./cmd/benchjson [-suite runonce|campaign|lanes|codegen|convergence] [-out FILE]
//	go run ./cmd/benchjson -compare [-tolerance T] old.json new.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/sampling"
	"repro/internal/soc"
	"repro/internal/stats"
	"repro/internal/timingsim"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	N           int     `json:"n"`
	// SamplesPerSec is reported by the campaign suite only.
	SamplesPerSec float64 `json:"samples_per_sec,omitempty"`
	// SSF, CIHalfWidth, and ESS are reported by the convergence suite
	// only (ns_per_op holds the samples-to-target-CI count there).
	SSF         float64 `json:"ssf,omitempty"`
	CIHalfWidth float64 `json:"ci_half_width,omitempty"`
	ESS         float64 `json:"ess,omitempty"`
}

type benchFile struct {
	Benchmarks []benchResult `json:"benchmarks"`
	// SpeedupBatched records batched-over-scalar campaign throughput
	// (campaign suite only).
	SpeedupBatched float64 `json:"speedup_batched_vs_scalar,omitempty"`
	// SpeedupCodegen records generated-over-interpreted combinational
	// pass throughput at 512 lanes; SpeedupCodegenCampaign records the
	// same ratio at full-campaign level (codegen suite only).
	SpeedupCodegen         float64 `json:"speedup_codegen_vs_interp,omitempty"`
	SpeedupCodegenCampaign float64 `json:"speedup_codegen_campaign,omitempty"`
}

func main() {
	out := flag.String("out", "", "output path (default BENCH_<suite>.json)")
	suite := flag.String("suite", "runonce", "benchmark suite: runonce | campaign | lanes | codegen | convergence")
	compare := flag.Bool("compare", false, "compare two records (old.json new.json) instead of benchmarking")
	tolerance := flag.Float64("tolerance", 0.25, "compare: allowed fractional ns/op growth before failing")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two files: old.json new.json"))
		}
		if err := compareFiles(flag.Arg(0), flag.Arg(1), *tolerance); err != nil {
			fatal(err)
		}
		return
	}

	var results []benchResult
	switch *suite {
	case "runonce":
		results = runOnceSuite()
	case "campaign":
		results = campaignSuite()
	case "lanes":
		results = lanesSuite()
	case "codegen":
		results = codegenSuite()
	case "convergence":
		results = convergenceSuite()
	default:
		fatal(fmt.Errorf("unknown suite %q", *suite))
	}

	file := benchFile{Benchmarks: results}
	if *suite == "campaign" {
		var scalar, batched float64
		for _, r := range results {
			switch r.Name {
			case "CampaignScalar":
				scalar = r.NsPerOp
			case "CampaignBatched":
				batched = r.NsPerOp
			}
		}
		if batched > 0 {
			file.SpeedupBatched = scalar / batched
			fmt.Printf("batched speedup: %.2fx\n", file.SpeedupBatched)
		}
	}
	if *suite == "codegen" {
		var evalInterp, evalGen, campInterp, campGen float64
		for _, r := range results {
			switch r.Name {
			case "EvalPassInterp512":
				evalInterp = r.NsPerOp
			case "EvalPassCodegen512":
				evalGen = r.NsPerOp
			case "CampaignInterp512":
				campInterp = r.NsPerOp
			case "CampaignCodegen512":
				campGen = r.NsPerOp
			}
		}
		if evalGen > 0 {
			file.SpeedupCodegen = evalInterp / evalGen
			fmt.Printf("codegen eval speedup (512 lanes): %.2fx\n", file.SpeedupCodegen)
		}
		if campGen > 0 {
			file.SpeedupCodegenCampaign = campInterp / campGen
			fmt.Printf("codegen campaign speedup: %.2fx\n", file.SpeedupCodegenCampaign)
		}
	}
	path := *out
	if path == "" {
		path = "BENCH_" + *suite + ".json"
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

// record runs one benchmark function and prints + collects its result.
func record(results *[]benchResult, name string, fn func(b *testing.B)) *benchResult {
	r := testing.Benchmark(fn)
	res := benchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		N:           r.N,
	}
	*results = append(*results, res)
	fmt.Printf("%-16s %12.0f ns/op %8d B/op %6d allocs/op (n=%d)\n",
		name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.N)
	return &(*results)[len(*results)-1]
}

func runOnceSuite() []benchResult {
	fw, ev := setup()
	var results []benchResult

	record(&results, "RunOnce", func(b *testing.B) {
		b.ReportAllocs()
		rng := rand.New(rand.NewSource(1))
		samples := make([]fault.Sample, 512)
		for i := range samples {
			samples[i] = ev.Attack.SampleNominal(rng)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev.Engine.RunOnce(rng, samples[i%len(samples)], montecarlo.GateAttack)
		}
	})

	record(&results, "GateInjection", func(b *testing.B) {
		b.ReportAllocs()
		tsim, err := timingsim.New(fw.MPU.Netlist, fw.Opts.Delay)
		if err != nil {
			b.Fatal(err)
		}
		s := ev.Engine.SoC
		s.Reset()
		for i := 0; i < 100; i++ {
			s.Step()
		}
		s.Sim.Eval()
		values := func(id netlist.NodeID) bool { return s.Sim.Bool(id) }
		rng := rand.New(rand.NewSource(1))
		strikes := make([]timingsim.Strike, 64)
		for i := range strikes {
			smp := ev.Attack.SampleNominal(rng)
			strikes[i] = ev.Attack.Strike(fw.Place, smp)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tsim.Inject(values, strikes[i%len(strikes)])
		}
	})

	record(&results, "RTLCycle", func(b *testing.B) {
		b.ReportAllocs()
		cfg := soc.DefaultConfig()
		s, err := soc.New(cfg, soc.SyntheticProgram(cfg.DMABase, cfg.DMALimit))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
	})

	return results
}

// campaignSuite measures end-to-end campaign throughput on the bundled
// MPU workload, scalar vs lane-batched, with the same importance
// sampler and seed the root go-bench harness uses.
func campaignSuite() []benchResult {
	_, ev := setup()
	var results []benchResult
	for _, cfg := range []struct {
		name  string
		batch bool
	}{
		{"CampaignScalar", false},
		{"CampaignBatched", true},
	} {
		res := record(&results, cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			sp, err := ev.ImportanceSampler()
			if err != nil {
				b.Fatal(err)
			}
			opts := montecarlo.CampaignOptions{Samples: b.N, Seed: 1, Batch: cfg.batch}
			b.ResetTimer()
			if _, err := ev.Engine.RunCampaign(b.Context(), sp, opts); err != nil {
				b.Fatal(err)
			}
		})
		res.SamplesPerSec = 1e9 / res.NsPerOp
	}
	return results
}

// lanesSuite measures batched campaign throughput across resume
// widths: the scalar baseline, then 64, 256, and 512 virtual lanes per
// combinational pass. Same workload, sampler, and seed as the campaign
// suite, so CampaignScalar is directly comparable across records.
func lanesSuite() []benchResult {
	_, ev := setup()
	var results []benchResult
	for _, cfg := range []struct {
		name  string
		batch bool
		lanes int
	}{
		{"CampaignScalar", false, 0},
		{"CampaignLanes64", true, 64},
		{"CampaignLanes256", true, 256},
		{"CampaignLanes512", true, 512},
	} {
		res := record(&results, cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			sp, err := ev.ImportanceSampler()
			if err != nil {
				b.Fatal(err)
			}
			opts := montecarlo.CampaignOptions{Samples: b.N, Seed: 1, Batch: cfg.batch, Lanes: cfg.lanes}
			b.ResetTimer()
			if _, err := ev.Engine.RunCampaign(b.Context(), sp, opts); err != nil {
				b.Fatal(err)
			}
		})
		res.SamplesPerSec = 1e9 / res.NsPerOp
	}
	return results
}

// codegenSuite measures what the generated straight-line evaluator
// buys over the interpreted op stream, at two levels. EvalPass* rows
// time a single combinational pass of the bundled MPU per lane width —
// the work the codegen backend replaces — with samples_per_sec counting
// lane-samples (lanes per pass over pass time); this is where the
// headline speedup_codegen_vs_interp comes from. Campaign* rows time
// the full lane-batched campaign on two otherwise identical stacks,
// one built with generated-evaluator binding disabled (the interpreted
// 512-lane baseline) and one with the committed MPU evaluator bound;
// that ratio is Amdahl-diluted because most of a sample is gate-level
// timing injection, not combinational sweep. Same workload, sampler,
// and seed as the lanes suite; fixed-seed results are bit-identical on
// both paths (montecarlo's TestCampaignCodegenEquivalence pins that).
func codegenSuite() []benchResult {
	_, evGen := setup()
	if !evGen.Engine.SoC.Sim.Plan().Generated() {
		fatal(fmt.Errorf("codegen suite: MPU plan did not bind the generated evaluator (stale mpu_evalgen.go? run `go generate ./...`)"))
	}
	prev := logicsim.SetGeneratedEnabled(false)
	_, evInt := setup() // Build and NewEvaluation both inside the disabled window
	logicsim.SetGeneratedEnabled(prev)
	if evInt.Engine.SoC.Sim.Plan().Generated() {
		fatal(fmt.Errorf("codegen suite: interpreted baseline bound a generated evaluator"))
	}

	var results []benchResult

	mpu, err := soc.BuildMPU(soc.DefaultMPUConfig())
	if err != nil {
		fatal(err)
	}
	prev = logicsim.SetGeneratedEnabled(false)
	simInt, errI := logicsim.New(mpu.Netlist)
	logicsim.SetGeneratedEnabled(prev)
	if errI != nil {
		fatal(errI)
	}
	simGen, err := logicsim.New(mpu.Netlist)
	if err != nil {
		fatal(err)
	}
	for _, cfg := range []struct {
		name   string
		sim    *logicsim.Simulator
		groups int
	}{
		{"EvalPassInterp512", simInt, 8},
		{"EvalPassCodegen64", simGen, 1},
		{"EvalPassCodegen256", simGen, 4},
		{"EvalPassCodegen512", simGen, 8},
	} {
		w, err := logicsim.NewLaneSim(cfg.sim, cfg.groups)
		if err != nil {
			fatal(err)
		}
		lanes := 64 * cfg.groups
		res := record(&results, cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.Eval()
			}
		})
		res.SamplesPerSec = float64(lanes) * 1e9 / res.NsPerOp
	}
	for _, cfg := range []struct {
		name  string
		ev    *core.Evaluation
		lanes int
	}{
		{"CampaignInterp512", evInt, 512},
		{"CampaignCodegen64", evGen, 64},
		{"CampaignCodegen256", evGen, 256},
		{"CampaignCodegen512", evGen, 512},
	} {
		ev := cfg.ev
		lanes := cfg.lanes
		res := record(&results, cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			sp, err := ev.ImportanceSampler()
			if err != nil {
				b.Fatal(err)
			}
			opts := montecarlo.CampaignOptions{Samples: b.N, Seed: 1, Batch: true, Lanes: lanes}
			b.ResetTimer()
			if _, err := ev.Engine.RunCampaign(b.Context(), sp, opts); err != nil {
				b.Fatal(err)
			}
		})
		res.SamplesPerSec = 1e9 / res.NsPerOp
	}
	return results
}

// convergenceSuite measures statistical rather than computational
// efficiency: for each sampler it runs an adaptive campaign until the
// 95% CI half-width of the campaign's active estimator reaches
// convTargetCI, and records how many samples that took. The stopping
// bound EstimatorVariance/eps² ≤ risk with eps = convTargetCI and
// risk = 1/z² is algebraically z·stderr ≤ convTargetCI. Everything is
// fixed-seed deterministic, so the committed record is exactly
// reproducible and gated tightly in CI.
const (
	convTargetCI   = 1e-4
	convMaxSamples = 1 << 19
)

func convergenceSuite() []benchResult {
	fw, ev := setup()
	newIm := func() *sampling.Importance {
		im, err := sampling.NewImportance(ev.Attack, fw.Char, fw.MPU.Netlist, fw.Place, sampling.DefaultAlpha, sampling.DefaultBeta)
		if err != nil {
			fatal(err)
		}
		return im
	}
	newStrat := func() sampling.Sampler {
		sp, err := sampling.NewStratified(newIm())
		if err != nil {
			fatal(err)
		}
		return sp
	}
	cfgs := []struct {
		name    string
		sampler sampling.Sampler
		adapt   bool
		cv      bool
	}{
		{"ConvRandom", ev.RandomSampler(), false, false},
		{"ConvImportance", newIm(), false, false},
		{"ConvImportanceAdapt", newIm(), true, false},
		{"ConvImportanceCV", newIm(), false, true},
		{"ConvStratified", newStrat(), false, false},
		{"ConvStratifiedNeyman", newStrat(), true, false},
		{"ConvSobol", sampling.NewSobol(newIm()), false, false},
	}
	var results []benchResult
	for _, cfg := range cfgs {
		aopts := montecarlo.AdaptiveOptions{
			Seed:           1,
			Epsilon:        convTargetCI,
			Risk:           1 / (stats.Z95 * stats.Z95),
			MinSamples:     2000,
			MaxSamples:     convMaxSamples,
			CheckEvery:     1000,
			Batch:          true,
			AdaptProposal:  cfg.adapt,
			ControlVariate: cfg.cv,
		}
		camp, err := ev.Engine.RunAdaptive(context.Background(), cfg.sampler, aopts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", cfg.name, err))
		}
		n := camp.Est.N()
		res := benchResult{
			Name:        cfg.name,
			NsPerOp:     float64(n), // samples to target CI, not time
			N:           n,
			SSF:         camp.SSF(),
			CIHalfWidth: camp.CIHalfWidth(),
			ESS:         camp.ESS(),
		}
		capped := ""
		if n >= convMaxSamples {
			capped = "  (hit sample cap)"
		}
		fmt.Printf("%-22s %8d samples to CI±%g  ssf=%.4e  ci=%.2e  ess=%.0f%s\n",
			cfg.name, n, convTargetCI, res.SSF, res.CIHalfWidth, res.ESS, capped)
		results = append(results, res)
	}
	return results
}

func setup() (*core.Framework, *core.Evaluation) {
	fw, err := core.Build(core.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	ev, err := fw.NewEvaluation(core.BenchmarkIllegalWrite, core.DefaultAttackSpec())
	if err != nil {
		fatal(err)
	}
	return fw, ev
}

// compareFiles loads two benchmark records and fails when a benchmark
// of the old record regressed beyond the tolerance in the new one, or
// disappeared from it. Benchmarks only present in the new record are
// reported but don't fail the comparison.
func compareFiles(oldPath, newPath string, tolerance float64) error {
	oldRec, err := loadFile(oldPath)
	if err != nil {
		return err
	}
	newRec, err := loadFile(newPath)
	if err != nil {
		return err
	}
	newBy := make(map[string]benchResult, len(newRec.Benchmarks))
	for _, r := range newRec.Benchmarks {
		newBy[r.Name] = r
	}
	failed := false
	for _, old := range oldRec.Benchmarks {
		cur, ok := newBy[old.Name]
		if !ok {
			fmt.Printf("%-16s MISSING from %s\n", old.Name, newPath)
			failed = true
			continue
		}
		limit := old.NsPerOp * (1 + tolerance)
		ratio := cur.NsPerOp / old.NsPerOp
		status := "ok"
		if cur.NsPerOp > limit {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-22s %12.0f -> %12.0f ns/op  (%+.1f%%, limit +%.0f%%)  %s\n",
			old.Name, old.NsPerOp, cur.NsPerOp, (ratio-1)*100, tolerance*100, status)
		delete(newBy, old.Name)
	}
	for _, r := range newRec.Benchmarks {
		if _, stillNew := newBy[r.Name]; stillNew {
			fmt.Printf("%-22s %12.0f ns/op  (new benchmark, not gated)\n", r.Name, r.NsPerOp)
		}
	}
	if failed {
		return fmt.Errorf("benchmark regression beyond %.0f%% tolerance", tolerance*100)
	}
	fmt.Println("compare: ok")
	return nil
}

func loadFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &f, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
