// Command experiments regenerates the paper's tables and figures on the
// synthetic SoC. Run with a list of experiment ids (fig4 fig7 fig8 fig9
// fig10 fig11 critical) or "all".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	samples := flag.Int("samples", 10000, "Monte Carlo samples per campaign")
	seed := flag.Int64("seed", 1, "campaign seed")
	csvDir := flag.String("csv", "", "also write machine-readable CSVs into this directory")
	flag.Parse()
	ids := flag.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = []string{"fig4", "fig7", "fig8", "fig9", "fig10", "fig11", "critical", "countermeasures"}
	}

	// Ctrl-C / SIGTERM aborts the current campaign instead of killing
	// the process mid-write.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("building framework + pre-characterization...\n")
	t0 := time.Now()
	ctx, err := experiments.NewContext(*samples)
	if err != nil {
		fatal(err)
	}
	ctx.Seed = *seed
	ctx.Ctx = sigCtx
	fmt.Printf("ready in %v (samples per campaign: %d)\n\n", time.Since(t0).Round(time.Millisecond), *samples)

	for _, id := range ids {
		t1 := time.Now()
		var out fmt.Stringer
		var err error
		switch id {
		case "fig4":
			out = experiments.Fig4(ctx)
		case "fig7":
			out, err = experiments.Fig7(ctx)
		case "fig8":
			out, err = experiments.Fig8(ctx)
		case "fig9":
			out, err = experiments.Fig9(ctx)
		case "fig10":
			out, err = experiments.Fig10(ctx)
		case "fig11":
			out, err = experiments.Fig11(ctx)
		case "critical":
			out, err = experiments.Critical(ctx)
		case "countermeasures":
			out, err = experiments.Countermeasures(ctx)
		default:
			fatal(fmt.Errorf("unknown experiment %q", id))
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== %s (%v) ===\n%s\n", id, time.Since(t1).Round(time.Millisecond), out)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id, out); err != nil {
				fatal(err)
			}
		}
	}
}

// writeCSV emits machine-readable data for the experiments that carry
// series (currently the Fig 9 convergence traces).
func writeCSV(dir, id string, out fmt.Stringer) error {
	r, ok := out.(*experiments.Fig9Result)
	if !ok {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, id+"_convergence.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	headers := make([]string, len(r.Strategies))
	cols := make([][]float64, len(r.Strategies))
	for i, s := range r.Strategies {
		headers[i] = s.Name
		cols[i] = s.Convergence
	}
	return report.CSV(f, headers, cols...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
